// vsa_lint — statically verify a VSA plan without executing it.
//
// Builds the requested systolic array (QR, Cholesky, LU, or all three)
// for a given tile shape and runs prt::GraphCheck over the constructed
// graph: wiring, packet balance, enabled-channel cycles, feed capacity
// and reachability. No kernel ever runs and no thread is spawned, so
// arbitrarily large plans lint in milliseconds.
//
//   vsa_lint [--algo qr|chol|lu|all] --mt 8 --nt 6
//            [--nb 8 --ib 4 --tree hier --h 2 --boundary shifted
//             --nodes 2 --workers 2 --panels 3 --verbose]
//
// mt/nt are TILE counts (the matrix is mt*nb by nt*nb; chol and lu use
// mt x mt). Exits 0 when every linted plan is clean, 1 when any plan has
// an error-severity finding, 2 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "chol/vsa_chol.hpp"
#include "lu/vsa_lu.hpp"
#include "vsaqr/tree_qr.hpp"

using namespace pulsarqr;

namespace {

struct Args {
  std::map<std::string, std::string> kv;

  bool has(const std::string& k) const { return kv.count(k) > 0; }
  int geti(const std::string& k, int dflt) const {
    auto it = kv.find(k);
    return it == kv.end() ? dflt : std::atoi(it->second.c_str());
  }
  std::string gets(const std::string& k, const std::string& dflt) const {
    auto it = kv.find(k);
    return it == kv.end() ? dflt : it->second;
  }
};

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (arg[0] != '-' || arg[1] != '-') {
      std::fprintf(stderr, "unexpected argument: %s\n", arg);
      std::exit(2);
    }
    const std::string key(arg + 2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      a.kv[key] = argv[++i];
    } else {
      a.kv[key] = "1";
    }
  }
  return a;
}

/// Print one plan's verdict; returns the number of error findings.
int report(const char* what, const std::string& shape,
           const prt::GraphReport& rep, bool verbose) {
  if (rep.ok() && rep.diagnostics.empty()) {
    std::printf("%-5s %s: OK\n", what, shape.c_str());
  } else {
    std::printf("%-5s %s: %d error(s), %d warning(s)\n", what, shape.c_str(),
                rep.errors(), rep.warnings());
    verbose = true;
  }
  if (verbose && !rep.diagnostics.empty()) {
    std::printf("%s\n", rep.to_string().c_str());
  }
  return rep.errors();
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);
  const std::string algo = a.gets("algo", "all");
  const int mt = a.geti("mt", 8);
  const int nt = a.geti("nt", 6);
  const int nb = a.geti("nb", 8);
  const bool verbose = a.has("verbose");
  if (mt < 1 || nt < 1 || nb < 1) {
    std::fprintf(stderr, "need --mt >= 1, --nt >= 1, --nb >= 1\n");
    return 2;
  }

  int errors = 0;
  try {
    if (algo == "qr" || algo == "all") {
      vsaqr::TreeQrOptions opt;
      const std::string tree = a.gets("tree", "hier");
      if (tree == "flat") {
        opt.tree.tree = plan::TreeKind::Flat;
      } else if (tree == "binary") {
        opt.tree.tree = plan::TreeKind::Binary;
      } else if (tree == "hier" || tree == "binary-on-flat") {
        opt.tree.tree = plan::TreeKind::BinaryOnFlat;
      } else {
        std::fprintf(stderr, "unknown --tree %s (flat|binary|hier)\n",
                     tree.c_str());
        return 2;
      }
      opt.tree.domain_size = a.geti("h", 6);
      opt.tree.boundary = a.gets("boundary", "shifted") == "fixed"
                              ? plan::BoundaryMode::Fixed
                              : plan::BoundaryMode::Shifted;
      opt.ib = std::min(a.geti("ib", 4), nb);
      opt.nodes = a.geti("nodes", 1);
      opt.workers_per_node = a.geti("workers", 2);
      opt.panel_columns = a.geti("panels", -1);
      const TileMatrix zero(mt * nb, nt * nb, nb);
      errors += report(
          "qr",
          "mt=" + std::to_string(mt) + " nt=" + std::to_string(nt) +
              " tree=" + tree + " h=" + std::to_string(opt.tree.domain_size),
          vsaqr::lint_tree_qr(zero, opt), verbose);
    }
    if (algo == "chol" || algo == "all") {
      chol::VsaCholOptions opt;
      opt.nodes = a.geti("nodes", 1);
      opt.workers_per_node = a.geti("workers", 2);
      const TileMatrix zero(mt * nb, mt * nb, nb);
      errors += report("chol", "mt=" + std::to_string(mt),
                       chol::lint_vsa_cholesky(zero, opt), verbose);
    }
    if (algo == "lu" || algo == "all") {
      lu::VsaLuOptions opt;
      opt.nodes = a.geti("nodes", 1);
      opt.workers_per_node = a.geti("workers", 2);
      const TileMatrix zero(mt * nb, mt * nb, nb);
      errors += report("lu", "mt=" + std::to_string(mt),
                       lu::lint_vsa_lu(zero, opt), verbose);
    }
    if (algo != "qr" && algo != "chol" && algo != "lu" && algo != "all") {
      std::fprintf(stderr, "unknown --algo %s (qr|chol|lu|all)\n",
                   algo.c_str());
      return 2;
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return errors > 0 ? 1 : 0;
}
